package core

import (
	"testing"
	"testing/quick"

	"ampom/internal/memory"
	"ampom/internal/simtime"
	"ampom/internal/trace"
)

// paperCfg disables the read-ahead baseline so raw Eq. 1–3 behaviour is
// observable, and uses the paper's l=20, dmax=4.
func paperCfg() Config {
	return Config{WindowLen: 20, DMax: 4, MaxPrefetch: 1024, BaselineScore: -1}
}

func record(p *Prefetcher, pages []int64) {
	for i, v := range pages {
		p.RecordFault(memory.PageNum(v), simtime.Time(i)*simtime.Time(simtime.Millisecond), 1)
	}
}

func est(rtt, td simtime.Duration) Estimates {
	return Estimates{RTT: rtt, PageTransfer: td}
}

func TestConfigDefaults(t *testing.T) {
	c, err := Config{}.normalised()
	if err != nil {
		t.Fatal(err)
	}
	if c.WindowLen != DefaultWindowLen || c.DMax != DefaultDMax ||
		c.MaxPrefetch != DefaultMaxPrefetch || c.BaselineScore != DefaultBaselineScore {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{WindowLen: 1},
		{WindowLen: 10, DMax: 10},
		{WindowLen: 10, DMax: -1},
		{MaxPrefetch: -2},
		{BaselineScore: 1.5},
	}
	for _, c := range bad {
		if _, err := New(c, 100); err == nil {
			t.Fatalf("config %+v accepted", c)
		}
	}
	if _, err := New(DefaultConfig(), 0); err == nil {
		t.Fatal("zero-page address space accepted")
	}
}

func TestWindowSlide(t *testing.T) {
	p := MustNew(Config{WindowLen: 4, DMax: 2}, 1000)
	record(p, []int64{1, 2, 3, 4, 5, 6})
	w := p.Window()
	want := []memory.PageNum{3, 4, 5, 6}
	if len(w) != 4 {
		t.Fatalf("window = %v", w)
	}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("window = %v, want %v (oldest discarded, §3.1)", w, want)
		}
	}
}

func TestConsecutiveRepeatsCollapse(t *testing.T) {
	p := MustNew(paperCfg(), 1000)
	record(p, []int64{7, 7, 7, 8})
	w := p.Window()
	if len(w) != 2 || w[0] != 7 || w[1] != 8 {
		t.Fatalf("window = %v, want [7 8] (§3.1: consecutive repeats collapse)", w)
	}
	if p.Faults() != 4 {
		t.Fatalf("faults = %d, want 4 (collapse affects window, not census)", p.Faults())
	}
}

// TestScorePaperExample2 checks Eq. 1 against §3.2's worked example:
// {10,99,11,34,12,85} with l = 6 gives S = 0.25.
func TestScorePaperExample2(t *testing.T) {
	p := MustNew(Config{WindowLen: 6, DMax: 4, BaselineScore: -1}, 1000)
	record(p, []int64{10, 99, 11, 34, 12, 85})
	a := p.Analyze(est(0, 0))
	if a.Score != 0.25 {
		t.Fatalf("S = %v, want 0.25 (paper §3.2)", a.Score)
	}
}

// TestScoreSequentialIsOne: §3.2 "a process only does sequential access to
// consecutive pages has S = 1".
func TestScoreSequentialIsOne(t *testing.T) {
	p := MustNew(paperCfg(), 10000)
	seq := make([]int64, 20)
	for i := range seq {
		seq[i] = int64(100 + i)
	}
	record(p, seq)
	if a := p.Analyze(est(0, 0)); a.Score != 1 {
		t.Fatalf("sequential S = %v, want 1", a.Score)
	}
}

// TestPivotsPaperExample reproduces §3.4's worked example: window
// {13,27,7,8,14,8,3,15,4,5} has outstanding streams {14,15}, {3,4}, {4,5}
// with pivots 16, 5 and 6; the stream {7,8} is no longer outstanding.
func TestPivotsPaperExample(t *testing.T) {
	p := MustNew(Config{WindowLen: 10, DMax: 4, BaselineScore: -1}, 1000)
	record(p, []int64{13, 27, 7, 8, 14, 8, 3, 15, 4, 5})
	a := p.Analyze(est(simtime.Second, 0)) // estimates irrelevant to pivots
	want := []memory.PageNum{16, 5, 6}
	if len(a.Pivots) != len(want) {
		t.Fatalf("pivots = %v, want %v (paper §3.4)", a.Pivots, want)
	}
	for i := range want {
		if a.Pivots[i] != want[i] {
			t.Fatalf("pivots = %v, want %v (paper §3.4)", a.Pivots, want)
		}
	}
	if a.Streams != 3 {
		t.Fatalf("m = %d, want 3", a.Streams)
	}
}

// TestNFormula checks Eq. 3 numerically: N = (c'/c)·S·(r·(2t0+td) + 1).
func TestNFormula(t *testing.T) {
	p := MustNew(paperCfg(), 1_000_000)
	// 20 sequential faults 1 ms apart: r = 20 / 19 ms ≈ 1052.6 faults/s,
	// S = 1, c = c' = 1.
	record(p, func() []int64 {
		s := make([]int64, 20)
		for i := range s {
			s[i] = int64(i)
		}
		return s
	}())
	rtt := 20 * simtime.Millisecond
	td := 400 * simtime.Microsecond
	a := p.Analyze(est(rtt, td))
	r := 20.0 / 0.019
	wantN := r*(0.020+0.0004) + 1
	if a.NReal < wantN*0.999 || a.NReal > wantN*1.001 {
		t.Fatalf("NReal = %v, want ≈%v", a.NReal, wantN)
	}
	if a.N != int(a.NReal) {
		t.Fatalf("N = %d, want ⌊%v⌋", a.N, a.NReal)
	}
}

func TestNGrowsWithPagingRate(t *testing.T) {
	mk := func(spacing simtime.Duration) float64 {
		p := MustNew(paperCfg(), 1_000_000)
		for i := 0; i < 20; i++ {
			p.RecordFault(memory.PageNum(i), simtime.Time(i)*simtime.Time(spacing), 1)
		}
		return p.Analyze(est(10*simtime.Millisecond, simtime.Millisecond)).NReal
	}
	fast := mk(100 * simtime.Microsecond)
	slow := mk(10 * simtime.Millisecond)
	if fast <= slow {
		t.Fatalf("N(fast paging)=%v <= N(slow paging)=%v; Eq. 3 requires growth with r", fast, slow)
	}
}

func TestNGrowsWithLatency(t *testing.T) {
	mk := func(rtt simtime.Duration) float64 {
		p := MustNew(paperCfg(), 1_000_000)
		record(p, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19})
		return p.Analyze(est(rtt, simtime.Millisecond)).NReal
	}
	if mk(100*simtime.Millisecond) <= mk(simtime.Millisecond) {
		t.Fatal("N must grow with the network round trip (busy network ⇒ more aggressive, §1)")
	}
}

func TestNScalesWithCPURatio(t *testing.T) {
	mk := func(lastCPU float64) float64 {
		p := MustNew(paperCfg(), 1_000_000)
		for i := 0; i < 20; i++ {
			cpu := 0.5
			if i == 19 {
				cpu = lastCPU
			}
			p.RecordFault(memory.PageNum(i), simtime.Time(i)*simtime.Time(simtime.Millisecond), cpu)
		}
		return p.Analyze(est(10*simtime.Millisecond, 0)).NReal
	}
	if mk(1.0) <= mk(0.25) {
		t.Fatal("N must grow with c'/c (Eq. 2)")
	}
}

func TestZeroScoreNoPrefetchWithoutBaseline(t *testing.T) {
	p := MustNew(paperCfg(), 1_000_000)
	record(p, []int64{9001, 17, 55555, 1234, 777777, 42, 31337, 2718, 16180, 999,
		10007, 20011, 30013, 40009, 50021, 60013, 70001, 80021, 91, 123456})
	a := p.Analyze(est(50*simtime.Millisecond, simtime.Millisecond))
	if a.Score != 0 {
		t.Fatalf("random S = %v", a.Score)
	}
	if a.N != 0 || len(a.Zone) != 0 {
		t.Fatalf("baseline disabled but N=%d zone=%v", a.N, a.Zone)
	}
}

func TestBaselineScoreFloorsZoneSizing(t *testing.T) {
	cfg := paperCfg()
	cfg.BaselineScore = 0.5
	p := MustNew(cfg, 1_000_000)
	record(p, []int64{9001, 17, 55555, 1234, 777777, 42, 31337, 2718, 16180, 999,
		10007, 20011, 30013, 40009, 50021, 60013, 70001, 80021, 91, 123456})
	a := p.Analyze(est(50*simtime.Millisecond, simtime.Millisecond))
	if a.Score != 0 {
		t.Fatalf("reported score must stay raw, got %v", a.Score)
	}
	if a.N == 0 || len(a.Zone) == 0 {
		t.Fatal("baseline floor did not produce a read-ahead zone")
	}
	// Fallback zone follows the last faulted page (§3.4).
	if a.Zone[0] != 123457 {
		t.Fatalf("zone starts at %d, want 123457 (read-ahead after last ref)", a.Zone[0])
	}
}

func TestZoneQuotaSplitAcrossPivots(t *testing.T) {
	p := MustNew(Config{WindowLen: 10, DMax: 4, MaxPrefetch: 1024, BaselineScore: -1}, 100000)
	// Two disjoint outstanding stride-2 streams: 100,101 and 200,201.
	record(p, []int64{100, 200, 101, 201})
	// Small t keeps N tight so each pivot gets a short, disjoint run.
	a := p.Analyze(est(10*simtime.Millisecond, 0))
	if a.Streams != 2 {
		t.Fatalf("streams = %d, want 2", a.Streams)
	}
	if a.N < 2 {
		t.Fatalf("N = %d, want >= 2", a.N)
	}
	if len(a.Zone) != a.N {
		t.Fatalf("zone size %d != N %d", len(a.Zone), a.N)
	}
	// N/m pages after each pivot: first share follows 102.., second 202...
	var from100, from200 int
	for _, z := range a.Zone {
		switch {
		case z >= 102 && z < 200:
			from100++
		case z >= 202:
			from200++
		default:
			t.Fatalf("zone page %d outside both streams", z)
		}
	}
	if from100 == 0 || from200 == 0 {
		t.Fatalf("quota not split: %d/%d", from100, from200)
	}
	diff := from100 - from200
	if diff < -1 || diff > 1 {
		t.Fatalf("quota imbalance: %d vs %d", from100, from200)
	}
}

// TestZoneSavedQuota: §3.4 — overlapping streams do not waste quota; pages
// already chosen roll the quota forward to subsequent pages.
func TestZoneSavedQuota(t *testing.T) {
	p := MustNew(Config{WindowLen: 10, DMax: 4, MaxPrefetch: 1024, BaselineScore: -1}, 100000)
	// Two streams completing at adjacent pages: pivots 102 and 103.
	record(p, []int64{100, 101, 102})
	a := p.Analyze(est(simtime.Second, 0))
	if len(a.Zone) != a.N {
		t.Fatalf("zone %d != N %d (saved quota must extend the zone)", len(a.Zone), a.N)
	}
	seen := map[memory.PageNum]bool{}
	for _, z := range a.Zone {
		if seen[z] {
			t.Fatalf("duplicate zone page %d", z)
		}
		seen[z] = true
	}
}

func TestZoneClampedToAddressSpace(t *testing.T) {
	p := MustNew(Config{WindowLen: 10, DMax: 4, MaxPrefetch: 1024, BaselineScore: -1}, 105)
	record(p, []int64{100, 101, 102})
	a := p.Analyze(est(simtime.Second, 0))
	for _, z := range a.Zone {
		if z >= 105 {
			t.Fatalf("zone page %d beyond address space", z)
		}
	}
}

func TestMaxPrefetchCap(t *testing.T) {
	cfg := paperCfg()
	cfg.MaxPrefetch = 5
	p := MustNew(cfg, 1_000_000)
	record(p, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19})
	a := p.Analyze(est(simtime.Second, 0))
	if a.N > 5 || len(a.Zone) > 5 {
		t.Fatalf("cap violated: N=%d zone=%d", a.N, len(a.Zone))
	}
}

func TestAnalyzeNeedsTwoFaults(t *testing.T) {
	p := MustNew(paperCfg(), 1000)
	if a := p.Analyze(est(0, 0)); a.N != 0 || a.Score != 0 {
		t.Fatal("empty window should analyse to nothing")
	}
	p.RecordFault(5, 0, 1)
	if a := p.Analyze(est(0, 0)); a.N != 0 {
		t.Fatal("single-entry window should analyse to nothing")
	}
}

func TestPrefetchedAccounting(t *testing.T) {
	p := MustNew(paperCfg(), 1000)
	p.RecordFault(1, 0, 1)
	p.RecordFault(2, simtime.Time(simtime.Millisecond), 1)
	p.NotePrefetched(10)
	p.NotePrefetched(5)
	if p.Prefetched() != 15 {
		t.Fatalf("prefetched = %d", p.Prefetched())
	}
	if got := p.PrefetchedPerFault(); got != 7.5 {
		t.Fatalf("per fault = %v", got)
	}
	empty := MustNew(paperCfg(), 1000)
	if empty.PrefetchedPerFault() != 0 {
		t.Fatal("zero-fault ratio should be 0")
	}
}

// TestScoreMatchesTraceImplementation: the optimised in-kernel score and
// the reference implementation in package trace agree on windows of
// distinct pages.
func TestScoreMatchesTraceImplementation(t *testing.T) {
	f := func(raw [12]uint8) bool {
		seen := map[int64]bool{}
		var w []memory.PageNum
		for _, r := range raw {
			v := int64(r % 40)
			if seen[v] {
				continue
			}
			seen[v] = true
			w = append(w, memory.PageNum(v))
		}
		if len(w) < 2 {
			return true
		}
		const l, dmax = 20, 4
		p := MustNew(Config{WindowLen: l, DMax: dmax, BaselineScore: -1}, 1_000_000)
		for i, page := range w {
			p.RecordFault(page, simtime.Time(i)*simtime.Time(simtime.Millisecond), 1)
		}
		got := p.Analyze(est(0, 0)).Score
		want := trace.SpatialScore(w, l, dmax)
		diff := got - want
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestScoreBounded: the score stays in [0,1] for arbitrary windows,
// including ones with duplicate pages.
func TestScoreBounded(t *testing.T) {
	f := func(raw []uint8) bool {
		p := MustNew(paperCfg(), 1_000_000)
		for i, r := range raw {
			p.RecordFault(memory.PageNum(r%32), simtime.Time(i)*simtime.Time(simtime.Microsecond), 1)
		}
		a := p.Analyze(est(simtime.Millisecond, simtime.Microsecond))
		return a.Score >= 0 && a.Score <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestZoneNeverContainsWindowDuplicates: zone pages are distinct and within
// the address space for arbitrary fault histories.
func TestZoneInvariantsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const pages = 4096
		p := MustNew(DefaultConfig(), pages)
		for i, r := range raw {
			p.RecordFault(memory.PageNum(r%pages), simtime.Time(i)*simtime.Time(100*simtime.Microsecond), 0.8)
		}
		a := p.Analyze(est(30*simtime.Millisecond, 400*simtime.Microsecond))
		if len(a.Zone) > a.N {
			return false
		}
		seen := map[memory.PageNum]bool{}
		for _, z := range a.Zone {
			if z < 0 || z >= pages || seen[z] {
				return false
			}
			seen[z] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModel(t *testing.T) {
	cm := DefaultCostModel()
	cfg := DefaultConfig()
	a := Analysis{Zone: make([]memory.PageNum, 100)}
	cost := cm.AnalysisCost(cfg, a)
	if cost <= 0 {
		t.Fatal("cost must be positive")
	}
	bigger := cm.AnalysisCost(cfg, Analysis{Zone: make([]memory.PageNum, 1000)})
	if bigger <= cost {
		t.Fatal("cost must grow with zone size")
	}
	// Several µs at most for the paper configuration — the Figure 11
	// magnitude.
	if cost > 20*simtime.Microsecond {
		t.Fatalf("cost = %v implausibly high", cost)
	}
}

// TestCanonicalFixedPoint: Canonical must be idempotent and must keep the
// disabled-baseline sentinel distinct from "use the default" — the campaign
// engine's cache fingerprints and the Prefetcher construction both rely on
// round-tripping the canonical form without reinterpretation.
func TestCanonicalFixedPoint(t *testing.T) {
	for _, c := range []Config{
		{},
		DefaultConfig(),
		{BaselineScore: -1},
		{BaselineScore: -0.3},
		{WindowLen: 5, DMax: 2},
	} {
		canon := c.Canonical()
		if canon != canon.Canonical() {
			t.Errorf("Canonical not idempotent: %+v -> %+v", canon, canon.Canonical())
		}
	}
	if (Config{BaselineScore: -2}).Canonical() == DefaultConfig().Canonical() {
		t.Error("disabled baseline canonicalises to the default configuration")
	}
}
