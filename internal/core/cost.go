package core

import "ampom/internal/simtime"

// CostModel prices the in-kernel CPU time one AMPoM analysis consumes, for
// the Figure 11 overhead experiment. The constants are calibrated for the
// paper's 2 GHz Pentium 4 testbed: a window scan plus zone construction is
// a few microseconds, keeping total analysis overhead below ~0.6 % of
// application runtime.
type CostModel struct {
	// Base covers fault-handler entry and window bookkeeping.
	Base simtime.Duration
	// PerProbe is charged per stride probe, i.e. WindowLen·DMax times.
	PerProbe simtime.Duration
	// PerZonePage is charged per dependent-zone page materialised.
	PerZonePage simtime.Duration
}

// DefaultCostModel returns the 2 GHz P4 calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		Base:        800 * simtime.Nanosecond,
		PerProbe:    18 * simtime.Nanosecond,
		PerZonePage: 9 * simtime.Nanosecond,
	}
}

// AnalysisCost returns the modelled CPU time of one analysis that produced
// a, under configuration cfg.
func (cm CostModel) AnalysisCost(cfg Config, a Analysis) simtime.Duration {
	probes := simtime.Duration(cfg.WindowLen * cfg.DMax)
	zone := simtime.Duration(len(a.Zone))
	return cm.Base + probes*cm.PerProbe + zone*cm.PerZonePage
}
