package core

import (
	"testing"

	"ampom/internal/memory"
	"ampom/internal/simtime"
)

// FuzzPrefetcherFault drives the AMPoM engine with arbitrary fault address
// streams — every configuration the fuzzer can reach, every byte-derived
// page sequence — and checks the per-fault analysis invariants the
// migration executor relies on: the score stays in [0, 1], the dependent
// zone respects the cap and the address-space bounds, and the zone never
// contains duplicates. Run with `go test -fuzz FuzzPrefetcherFault`; `make
// ci` gives it a 10 s smoke.
func FuzzPrefetcherFault(f *testing.F) {
	// Seed corpus: a sequential sweep, a strided reader, random-ish noise,
	// a constant page, and descending addresses, over assorted configs.
	f.Add(uint8(20), uint8(4), uint16(128), false, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(10), uint8(2), uint16(32), true, []byte{0, 3, 6, 9, 12, 15, 18, 21})
	f.Add(uint8(5), uint8(1), uint16(8), false, []byte{200, 17, 93, 4, 150, 62, 255, 0, 31})
	f.Add(uint8(2), uint8(1), uint16(1), true, []byte{7, 7, 7, 7, 7, 7})
	f.Add(uint8(40), uint8(8), uint16(512), false, []byte{250, 240, 230, 220, 210, 200})

	f.Fuzz(func(t *testing.T, windowLen, dmax uint8, cap16 uint16, disableBaseline bool, stream []byte) {
		if len(stream) > 512 {
			// The per-fault analysis is O(l²); long streams add time, not
			// coverage.
			stream = stream[:512]
		}
		cfg := Config{
			WindowLen:   int(windowLen),
			DMax:        int(dmax),
			MaxPrefetch: int(cap16),
		}
		if disableBaseline {
			cfg.BaselineScore = -1
		}
		const totalPages = 1 << 16
		p, err := New(cfg, totalPages)
		if err != nil {
			t.Skip() // invalid configuration, rejected as documented
		}
		canon := cfg.Canonical()

		est := Estimates{RTT: 20 * simtime.Millisecond, PageTransfer: 400 * simtime.Microsecond}
		var now simtime.Time
		for i := 0; i+1 < len(stream); i += 2 {
			// Two bytes per fault address; time advances by a byte-derived
			// step so paging rates vary.
			page := memory.PageNum(stream[i])<<8 | memory.PageNum(stream[i+1])
			now = now.Add(simtime.Duration(1+int64(stream[i]))*simtime.Microsecond + simtime.Millisecond)
			cpu := float64(stream[i+1]) / 255
			p.RecordFault(page, now, cpu)

			a := p.Analyze(est)
			if a.Score < 0 || a.Score > 1 {
				t.Fatalf("score %v out of [0,1]", a.Score)
			}
			if a.N < 0 {
				t.Fatalf("negative zone size %d", a.N)
			}
			if canon.MaxPrefetch > 0 && a.N > canon.MaxPrefetch {
				t.Fatalf("zone size %d above cap %d", a.N, canon.MaxPrefetch)
			}
			if len(a.Zone) > a.N {
				t.Fatalf("zone has %d pages for N=%d", len(a.Zone), a.N)
			}
			seen := make(map[memory.PageNum]bool, len(a.Zone))
			for _, pg := range a.Zone {
				if pg < 0 || pg >= totalPages {
					t.Fatalf("zone page %d outside the %d-page address space", pg, int64(totalPages))
				}
				if seen[pg] {
					t.Fatalf("duplicate page %d in zone %v", pg, a.Zone)
				}
				seen[pg] = true
			}
			if a.Streams < 0 || a.Streams > p.WindowLen() {
				t.Fatalf("stream count %d outside window of %d", a.Streams, p.WindowLen())
			}
			if a.PagingRate < 0 {
				t.Fatalf("negative paging rate %v", a.PagingRate)
			}
		}
		if got, want := p.Faults(), int64(len(stream)/2); got != want {
			t.Fatalf("fault census %d, want %d", got, want)
		}
	})
}
