// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one benchmark per artefact, plus micro-benchmarks of the hot paths.
//
// By default the experiment matrix runs at 1/16 of the paper's footprints
// so `go test -bench=.` completes in minutes; set AMPOM_BENCH_SCALE=1 to
// run the full Table 1 sizes (the numbers EXPERIMENTS.md records).
// Per-iteration metrics are reported with b.ReportMetric, so the benchmark
// output carries the same series the paper plots.
package ampom

import (
	"os"
	"strconv"
	"testing"

	"ampom/internal/core"
	"ampom/internal/harness"
	"ampom/internal/hpcc"
	"ampom/internal/memory"
	"ampom/internal/migrate"
	"ampom/internal/netmodel"
	"ampom/internal/simtime"
)

// benchScale reads the campaign scale divisor from the environment.
func benchScale() int64 {
	if s := os.Getenv("AMPOM_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v >= 1 {
			return v
		}
	}
	return 16
}

func benchCampaign() *harness.Matrix {
	return harness.NewMatrix(harness.Config{Scale: benchScale(), Seed: 42})
}

// BenchmarkTable1Catalogue regenerates Table 1 (problem and memory sizes).
func BenchmarkTable1Catalogue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := benchCampaign().Table1()
		if len(t.Rows) != 18 {
			b.Fatal("catalogue incomplete")
		}
	}
}

// BenchmarkFigure4Localities regenerates the locality quadrants.
func BenchmarkFigure4Localities(b *testing.B) {
	m := benchCampaign()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := m.Figure4()
		if len(t.Rows) != 4 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkFigure5FreezeTime regenerates the freeze-time series and reports
// the largest-DGEMM freeze per scheme as custom metrics.
func BenchmarkFigure5FreezeTime(b *testing.B) {
	m := benchCampaign()
	for i := 0; i < b.N; i++ {
		m = benchCampaign()
		if t := m.Figure5(); len(t.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
	report575(b, m, func(r *migrate.Result) float64 { return r.Freeze.Seconds() }, "freeze_s")
}

// BenchmarkFigure6ExecutionTime regenerates the total-execution series.
func BenchmarkFigure6ExecutionTime(b *testing.B) {
	m := benchCampaign()
	for i := 0; i < b.N; i++ {
		m = benchCampaign()
		if t := m.Figure6(); len(t.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
	report575(b, m, func(r *migrate.Result) float64 { return r.Total.Seconds() }, "total_s")
}

// BenchmarkFigure7PageFaults regenerates the fault-request series.
func BenchmarkFigure7PageFaults(b *testing.B) {
	m := benchCampaign()
	for i := 0; i < b.N; i++ {
		m = benchCampaign()
		if t := m.Figure7(); len(t.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
	report575(b, m, func(r *migrate.Result) float64 { return float64(r.HardFaults) }, "fault_requests")
}

// BenchmarkFigure8PrefetchAggressiveness regenerates the prefetched-pages
// series.
func BenchmarkFigure8PrefetchAggressiveness(b *testing.B) {
	m := benchCampaign()
	for i := 0; i < b.N; i++ {
		m = benchCampaign()
		if t := m.Figure8(); len(t.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
	report575(b, m, func(r *migrate.Result) float64 { return r.PrefetchPerRequest }, "prefetch_per_req")
}

// BenchmarkFigure9NetworkAdaptation regenerates the broadband adaptation
// bars.
func BenchmarkFigure9NetworkAdaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := benchCampaign().Figure9(); len(t.Rows) != 4 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkFigure10WorkingSets regenerates the small-working-set curves.
func BenchmarkFigure10WorkingSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := benchCampaign().Figure10(); len(t.Rows) != 5 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkFigure11Overhead regenerates the analysis-overhead series.
func BenchmarkFigure11Overhead(b *testing.B) {
	m := benchCampaign()
	for i := 0; i < b.N; i++ {
		m = benchCampaign()
		if t := m.Figure11(); len(t.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
	report575(b, m, func(r *migrate.Result) float64 { return r.OverheadPct }, "overhead_pct")
}

// report575 attaches the largest-DGEMM AMPoM metric of the last matrix as a
// custom benchmark metric.
func report575(b *testing.B, m *harness.Matrix, f func(*migrate.Result) float64, unit string) {
	b.Helper()
	e := hpcc.Scaled(hpcc.Largest(hpcc.DGEMM), benchScale())
	w, err := hpcc.Build(e, 42)
	if err != nil {
		b.Fatal(err)
	}
	r, err := migrate.Run(migrate.RunConfig{Workload: w, Scheme: migrate.AMPoM, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(f(r), unit)
}

// Ablation benchmarks — the design-choice studies DESIGN.md calls out.

func BenchmarkAblationBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := benchCampaign().AblationBaseline(); len(t.Rows) != 4 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationWindowLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := benchCampaign().AblationWindow(); len(t.Rows) != 5 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationDMax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := benchCampaign().AblationDMax(); len(t.Rows) != 4 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationPrefetchCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := benchCampaign().AblationCap(); len(t.Rows) != 4 {
			b.Fatal("ablation incomplete")
		}
	}
}

// Micro-benchmarks of the hot paths.

// BenchmarkAnalyze measures one AMPoM per-fault analysis (window scan,
// score, zone construction) — the cost Figure 11 bounds below 0.6 % of
// runtime.
func BenchmarkAnalyze(b *testing.B) {
	p := core.MustNew(core.DefaultConfig(), 1<<20)
	for i := 0; i < 20; i++ {
		p.RecordFault(memory.PageNum(1000+i), simtime.Time(i)*simtime.Time(simtime.Millisecond), 0.9)
	}
	est := core.Estimates{RTT: 20 * simtime.Millisecond, PageTransfer: 400 * simtime.Microsecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := p.Analyze(est)
		if a.N == 0 {
			b.Fatal("degenerate analysis")
		}
	}
}

// BenchmarkRecordFault measures the window update path.
func BenchmarkRecordFault(b *testing.B) {
	p := core.MustNew(core.DefaultConfig(), 1<<20)
	for i := 0; i < b.N; i++ {
		p.RecordFault(memory.PageNum(i&0xffff), simtime.Time(i), 0.9)
	}
}

// BenchmarkMigrationRun measures one complete small AMPoM experiment
// end to end (workload build excluded).
func BenchmarkMigrationRun(b *testing.B) {
	w, err := hpcc.Build(hpcc.Scaled(hpcc.Largest(hpcc.STREAM), 64), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := migrate.Run(migrate.RunConfig{Workload: w, Scheme: migrate.AMPoM, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if r.PagesArrived == 0 {
			b.Fatal("no paging happened")
		}
	}
}

// BenchmarkLinkThroughput measures the network model's message path.
func BenchmarkLinkThroughput(b *testing.B) {
	eng := newEngine()
	a := netmodel.NewNIC("a", nil)
	c := netmodel.NewNIC("b", func(netmodel.Message) {})
	link := netmodel.NewLink(eng, netmodel.FastEthernet(), a, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Send(a, netmodel.Message{Size: 4160})
		if i%1024 == 0 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

// BenchmarkCampaign runs the full figure/ablation matrix through the
// campaign engine, sequentially and through the worker pool. Per-job seeds
// are derived from the job key, so both variants produce byte-identical
// tables; on a multicore machine the parallel variant approaches a
// core-count speedup because the matrix is embarrassingly parallel.
func BenchmarkCampaign(b *testing.B) {
	for _, v := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0}, // GOMAXPROCS workers
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := harness.NewMatrix(harness.Config{Scale: benchScale(), Seed: 42, Workers: v.workers})
				if err := m.Prewarm(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Engine().Executed()), "jobs/op")
			}
		})
	}
}

// BenchmarkScenario runs the 64-node / 256-process preset through the
// cluster scenario engine end to end (all three balancing policies, star
// interconnect, infod daemons, prefetch census), so the perf trajectory
// captures cluster-scale numbers alongside the single-migration campaign.
func BenchmarkScenario(b *testing.B) {
	spec, err := ScenarioPreset("hpc-farm")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunScenario(spec, 42)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Baseline().Makespan == 0 {
			b.Fatal("degenerate scenario run")
		}
		if i == b.N-1 {
			am, _ := rep.Scheme(PolicyAMPoM)
			b.ReportMetric(float64(am.Migrations), "migrations")
			b.ReportMetric(am.MeanSlowdown, "slowdown")
			b.ReportMetric(float64(am.Events), "events")
		}
	}
}

// BenchmarkPolicySweep runs the 64-node preset under every registered
// balancer policy (`make bench-balance`), so the overhead of dynamic
// policy dispatch — the price of the open registry over the old closed
// enum — is tracked alongside per-policy migration counts.
func BenchmarkPolicySweep(b *testing.B) {
	spec, err := ScenarioPreset("hpc-farm")
	if err != nil {
		b.Fatal(err)
	}
	// The canonical policy set is the whole registry.
	names := BalancerPolicyNames()
	if len(spec.Policies) != len(names) {
		b.Fatalf("preset runs %d policies, registry has %d", len(spec.Policies), len(names))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunScenario(spec, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Schemes) != len(names) {
			b.Fatalf("report has %d rows, want %d", len(rep.Schemes), len(names))
		}
		if i == b.N-1 {
			for _, st := range rep.Schemes {
				if st.Policy == PolicyNoMigration {
					continue
				}
				b.ReportMetric(float64(st.Migrations), st.Policy+"_migrations")
			}
		}
	}
}

// fabric512EventBudget caps the rack-farm preset's event rate: the 512-node
// two-tier scenario must stay under this many engine events per simulated
// second, per policy. The gossip plane is the scaling hazard the budget
// polices — N daemons × fanout pushes per period, each crossing up to four
// store-and-forward hops — so a regression that floods the fabric (higher
// effective fanout, per-hop retransmits, runaway relays) trips the gate
// long before wall-clock noise would. Tightened from the original 24k once
// the incremental cluster view landed and the measured rate settled at
// ~3.3k events/sim-s; the budget keeps ~2× headroom.
const fabric512EventBudget = 6_500

// fabric4096EventBudget caps the mega-farm preset (4096 nodes / 16384
// procs, 64-node racks, 4 s gossip period): measured ~13.5k events/sim-s
// per policy, gated with ~2× headroom. Together with fabric512EventBudget
// this pins the monitoring plane's event cost to roughly linear growth in
// cluster size (8× the nodes, ~4× the per-sim-second events at half the
// gossip cadence).
const fabric4096EventBudget = 27_000

// assertEventBudget fails the benchmark if any policy row of rep exceeds
// budget events per simulated second, and reports per-policy rates on the
// final iteration.
func assertEventBudget(b *testing.B, rep *ScenarioReport, budget int, last bool) {
	b.Helper()
	for _, st := range rep.Schemes {
		simSeconds := st.Makespan.Seconds()
		if simSeconds <= 0 {
			b.Fatalf("%s: degenerate makespan", st.Policy)
		}
		evps := float64(st.Events) / simSeconds
		if evps > float64(budget) {
			b.Fatalf("%s: %0.f events/sim-s exceeds the %d budget (%d events over %.1f sim-s)",
				st.Policy, evps, budget, st.Events, simSeconds)
		}
		if last {
			b.ReportMetric(evps, st.Policy+"_ev_per_sim_s")
		}
	}
}

// BenchmarkFabric512 runs the 512-node / 2048-process rack-farm preset
// (two-tier switched fabric, gossip dissemination) end to end and asserts
// the event budget (`make bench-fabric`, part of `make ci`). The policy
// set is trimmed to the baseline, the headline policy and the gossip
// consumer so the CI gate stays minutes-scale; the budget applies to every
// row.
func BenchmarkFabric512(b *testing.B) {
	spec, err := ScenarioPreset("rack-farm")
	if err != nil {
		b.Fatal(err)
	}
	if spec.Nodes != 512 || spec.Procs != 2048 {
		b.Fatalf("rack-farm is %dn/%dp, want 512/2048", spec.Nodes, spec.Procs)
	}
	spec.Policies = []string{PolicyNoMigration, PolicyAMPoM, PolicyQueueGossip}
	spec = spec.Canonical()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunScenario(spec, 42)
		if err != nil {
			b.Fatal(err)
		}
		assertEventBudget(b, rep, fabric512EventBudget, i == b.N-1)
		if i == b.N-1 {
			qg, _ := rep.Scheme(PolicyQueueGossip)
			b.ReportMetric(float64(qg.Migrations), "qg_migrations")
		}
	}
}

// fabric512FailuresEventBudget caps the rack-farm-failures preset: the same
// 512-node fabric as BenchmarkFabric512 plus the failure script (two
// evacuating crashes, a rack-uplink flap, staggered recoveries). Failures
// are global events — a handful of crash/recover/link transitions per run —
// so the sustained rate must stay in the same band as the failure-free
// gate; a regression where the failure plane starts ticking per-process or
// per-quantum work (resweeping frozen procs, re-scheduling bounced
// payloads) trips this budget first. Measured ~4.4k events/sim-s per
// policy — above rack-farm's ~3.3k because stale gossip at the crashed
// nodes keeps steering migrations that bounce — gated with ~2× headroom
// like its siblings.
const fabric512FailuresEventBudget = 9_000

// BenchmarkFabric512Failures runs the rack-farm-failures preset end to end
// (`make bench-fabric`): the 512-node gate with node crashes, evacuation,
// fail-back and a link flap live. Alongside the event budget it reports the
// fail-back count, so CI notices if the failure script silently stops
// exercising the bounce path.
func BenchmarkFabric512Failures(b *testing.B) {
	spec, err := ScenarioPreset("rack-farm-failures")
	if err != nil {
		b.Fatal(err)
	}
	if spec.Nodes != 512 || spec.Procs != 2048 {
		b.Fatalf("rack-farm-failures is %dn/%dp, want 512/2048", spec.Nodes, spec.Procs)
	}
	spec.Policies = []string{PolicyNoMigration, PolicyAMPoM, PolicyQueueGossip}
	spec = spec.Canonical()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunScenario(spec, 42)
		if err != nil {
			b.Fatal(err)
		}
		assertEventBudget(b, rep, fabric512FailuresEventBudget, i == b.N-1)
		var crashes, failBacks int
		for _, st := range rep.Schemes {
			crashes += st.Crashes
			failBacks += st.FailBacks
			if st.Unfinished != 0 {
				b.Fatalf("%s: lost %d processes", st.Policy, st.Unfinished)
			}
		}
		if crashes == 0 {
			b.Fatal("failure preset recorded no crashes")
		}
		if i == b.N-1 {
			b.ReportMetric(float64(failBacks), "fail_backs")
		}
	}
}

// BenchmarkFabric4096 runs the 4096-node / 16384-process mega-farm preset
// (64-node racks under an 8× oversubscribed core, 4 s gossip) end to end —
// the scale the incremental cluster view exists for: balance rounds touch
// only dirty nodes and gossip probes read live aggregates, so the order of
// magnitude over rack-farm costs event budget, not view bookkeeping. The
// same trimmed policy trio as the 512-node gate keeps the CI run
// minutes-scale; the events-per-sim-second budget applies to every row.
func BenchmarkFabric4096(b *testing.B) {
	spec, err := ScenarioPreset("mega-farm")
	if err != nil {
		b.Fatal(err)
	}
	if spec.Nodes != 4096 || spec.Procs != 16384 {
		b.Fatalf("mega-farm is %dn/%dp, want 4096/16384", spec.Nodes, spec.Procs)
	}
	spec.Policies = []string{PolicyNoMigration, PolicyAMPoM, PolicyQueueGossip}
	spec = spec.Canonical()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunScenario(spec, 42)
		if err != nil {
			b.Fatal(err)
		}
		assertEventBudget(b, rep, fabric4096EventBudget, i == b.N-1)
		if i == b.N-1 {
			am, _ := rep.Scheme(PolicyAMPoM)
			b.ReportMetric(float64(am.Migrations), "ampom_migrations")
		}
	}
}

// fabric16384EventBudget caps the giga-farm preset (16384 nodes / 65536
// procs, 128-node racks, 4 s gossip period) — the scale the bounded
// partial-view gossip plane exists for. With full-membership pushes the
// plane alone would cost O(n²) entry transfers per period (268M entries a
// round at 16k nodes); windowed pushes pin the wire and merge cost to
// O(n·l), so quadrupling the cluster over mega-farm should roughly
// quadruple the event rate and no more. Measured ~60–64k events/sim-s per
// policy; the budget keeps ~2× headroom.
const fabric16384EventBudget = 125_000

// BenchmarkFabric16384 runs the 16384-node / 65536-process giga-farm
// preset end to end (`make bench-fabric`). Same trimmed policy trio as the
// smaller gates; the events-per-sim-second budget applies to every row.
func BenchmarkFabric16384(b *testing.B) {
	spec, err := ScenarioPreset("giga-farm")
	if err != nil {
		b.Fatal(err)
	}
	if spec.Nodes != 16384 || spec.Procs != 65536 {
		b.Fatalf("giga-farm is %dn/%dp, want 16384/65536", spec.Nodes, spec.Procs)
	}
	spec.Policies = []string{PolicyNoMigration, PolicyAMPoM, PolicyQueueGossip}
	spec = spec.Canonical()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunScenario(spec, 42)
		if err != nil {
			b.Fatal(err)
		}
		assertEventBudget(b, rep, fabric16384EventBudget, i == b.N-1)
		if i == b.N-1 {
			qg, _ := rep.Scheme(PolicyQueueGossip)
			b.ReportMetric(float64(qg.Migrations), "qg_migrations")
		}
	}
}

// BenchmarkFabric16384Shards is the giga-farm gate under the sharded
// event engine at one shard per rack (128): the same workload, required
// byte-identical to the sequential run — the event budget and migration
// metric below would trip on any divergence — with the per-rack event
// queues, gossip planes and link state advancing through conservative
// lookahead windows. On multi-core hosts the windows fan across
// goroutines; on a single core they run inline and measure the window
// machinery's overhead.
func BenchmarkFabric16384Shards(b *testing.B) {
	spec, err := ScenarioPreset("giga-farm")
	if err != nil {
		b.Fatal(err)
	}
	racks := (spec.Nodes + spec.Fabric.RackSize - 1) / spec.Fabric.RackSize
	spec.Policies = []string{PolicyNoMigration, PolicyAMPoM, PolicyQueueGossip}
	spec = spec.Canonical()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunScenarioShards(spec, 42, racks)
		if err != nil {
			b.Fatal(err)
		}
		assertEventBudget(b, rep, fabric16384EventBudget, i == b.N-1)
		if i == b.N-1 {
			qg, _ := rep.Scheme(PolicyQueueGossip)
			b.ReportMetric(float64(qg.Migrations), "qg_migrations")
			// The window scheduler's occupancy picture: how many lookahead
			// windows the run advanced through, what fraction degenerated to
			// single-threaded global syncs, and the cross-shard traffic. These
			// bound the achievable parallel speedup independently of core
			// count, so their trajectory is tracked next to the ns/op.
			if sh := qg.Sharding; sh != nil && sh.Group.Windows > 0 {
				g := sh.Group
				b.ReportMetric(float64(g.Windows), "windows")
				b.ReportMetric(float64(g.GlobalSyncWindows)/float64(g.Windows), "global_sync_frac")
				b.ReportMetric(float64(g.StagedEvents), "staged_events")
			}
		}
	}
}

// BenchmarkScenarioPresets fans every preset up to 512 nodes across the
// campaign worker pool — the ampom-cluster -scenario all path. The
// 4096-node mega-farm preset is gated separately (BenchmarkFabric4096,
// trimmed policy set) so this benchmark stays minutes-scale under the
// full six-policy registry.
func BenchmarkScenarioPresets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := NewCampaignEngine(CampaignOptions{BaseSeed: 42})
		jobs := make([]ScenarioJob, 0, 4)
		for _, spec := range ScenarioPresets() {
			if spec.Nodes <= 512 {
				jobs = append(jobs, ScenarioJob{Spec: spec})
			}
		}
		if _, err := eng.RunScenarios(jobs); err != nil {
			b.Fatal(err)
		}
	}
}
